// Experiment X3 (extension): robustness to lossy carrier sensing.
//
// The beeping model assumes perfect carrier sensing; real radios miss
// beeps. With per-receiver loss probability eps, a settled network jitters
// — a covered white vertex that misses its head's beep re-activates and may
// turn black — but self-stabilization keeps pulling it back. We measure
// (a) time to first reach an MIS under loss, and (b) the fraction of rounds
// in an MIS configuration over a long window (availability).
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "models/beeping.hpp"
#include "models/mis_automata.hpp"

using namespace ssmis;

int main(int argc, char** argv) {
  auto ctx = bench::init_experiment(
      argc, argv, "X3 (extension): lossy carrier sensing",
      "no claim in the paper; self-stabilization should degrade gracefully "
      "with the loss rate",
      3,
      bench::GraphFilePolicy::kLoad, "beeping", bench::ProtocolPolicy::kFixed);

  const Graph g = ctx.cell_graph([&] { return gen::random_geometric(300, 0.09, ctx.seed); });
  std::cout << "radio graph: " << g.summary() << "\n";
  const TwoStateBeepAutomaton automaton;

  print_banner(std::cout, "2-state beeping under receiver loss (window 4000 rounds)");
  TextTable table({"loss eps", "rounds to first MIS", "exact-MIS availability",
                   "mean local consistency", "worst-round consistency"});
  for (double eps : {0.0, 0.005, 0.01, 0.05, 0.1, 0.2}) {
    struct TrialStats {
      double first = 0;
      double avail = 0;
      double consistency = 0;
      double worst = 0;
    };
    const auto outcomes = ctx.trial_batch(ctx.trials).map<TrialStats>([&](int trial) {
      std::vector<std::uint8_t> boot(static_cast<std::size_t>(g.num_vertices()),
                                     TwoStateBeepAutomaton::kBlack);
      BeepingNetwork net(g, automaton, boot,
                         CoinOracle(ctx.seed + 31 + static_cast<std::uint64_t>(trial)));
      net.set_loss_probability(eps);
      net.set_shards(ctx.shards());
      const std::int64_t window = 4000;
      std::int64_t first_mis = -1;
      std::int64_t in_mis_rounds = 0;
      double consistency_sum = 0;
      double worst = 1.0;
      for (std::int64_t round = 1; round <= window; ++round) {
        net.step();
        // Local consistency against the TRUE graph state: a vertex is
        // consistent if black with no black neighbor, or non-black with one.
        Vertex violations = 0;
        for (Vertex u = 0; u < g.num_vertices(); ++u) {
          bool black_nbr = false;
          g.for_each_neighbor(u, [&](Vertex v) {
            black_nbr = net.state(v) == TwoStateBeepAutomaton::kBlack;
            return !black_nbr;
          });
          const bool is_black = net.state(u) == TwoStateBeepAutomaton::kBlack;
          if (is_black == black_nbr) ++violations;
        }
        const double consistent =
            1.0 - static_cast<double>(violations) / g.num_vertices();
        consistency_sum += consistent;
        worst = std::min(worst, consistent);
        if (violations == 0) {
          if (first_mis < 0) first_mis = round;
          ++in_mis_rounds;
        }
      }
      TrialStats out;
      out.first = static_cast<double>(first_mis < 0 ? window : first_mis);
      out.avail = static_cast<double>(in_mis_rounds) / static_cast<double>(window);
      out.consistency = consistency_sum / static_cast<double>(window);
      out.worst = worst;
      return out;
    });
    double first_total = 0;
    double avail_total = 0;
    double consistency_total = 0;
    double worst_total = 0;
    for (const TrialStats& o : outcomes) {
      first_total += o.first;
      avail_total += o.avail;
      consistency_total += o.consistency;
      worst_total += o.worst;
    }
    table.begin_row();
    table.add_cell(eps, 3);
    table.add_cell(first_total / ctx.trials);
    table.add_cell(avail_total / ctx.trials, 3);
    table.add_cell(consistency_total / ctx.trials, 4);
    table.add_cell(worst_total / ctx.trials, 4);
  }
  table.print(std::cout);

  bench::finish_experiment(
      "exact-MIS availability is brittle by construction (one missed beep "
      "anywhere in the 300-node network re-activates someone), but local "
      "consistency degrades gracefully and stays near 1 for small eps: "
      "losses cause isolated, quickly-repaired perturbations, not collapse");
  return 0;
}
