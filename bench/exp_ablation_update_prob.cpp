// Ablation A2 (footnote 1): the update probability 1/2 and the randomized
// white -> black transition are analysis simplifications. We sweep the
// resample bias q (P[active vertex draws black] = q) and compare against
// the "eager white" variant (white -> black with probability 1, as the
// footnote suggests the definition could have been).
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/init.hpp"
#include "core/runner.hpp"
#include "core/two_state_variant.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "stats/summary.hpp"

using namespace ssmis;

namespace {

Summary measure_variant(const Graph& g, double q, bool eager, int trials,
                        std::uint64_t seed, int* timeouts,
                        const bench::ExpContext& ctx) {
  // One slot per trial: results are reduced in trial order, so the table is
  // identical at any --threads value.
  const auto outcomes =
      ctx.trial_batch(trials).map<double>([&](int trial) -> double {
        const CoinOracle coins(seed + static_cast<std::uint64_t>(trial));
        TwoStateVariant p(g, make_init2(g, InitPattern::kUniformRandom, coins),
                          coins, q, eager);
        p.set_shards(ctx.shards());
        const RunResult r = run_until_stabilized(p, 500000);
        if (r.stabilized && is_mis(g, p.black_set()))
          return static_cast<double>(r.rounds);
        return -1.0;  // timeout marker
      });
  std::vector<double> rounds;
  *timeouts = 0;
  for (double v : outcomes) {
    if (v >= 0.0)
      rounds.push_back(v);
    else
      ++*timeouts;
  }
  return summarize(rounds);
}

}  // namespace

int main(int argc, char** argv) {
  auto ctx = bench::init_experiment(
      argc, argv, "A2 (ablation): update probability and eager-white variant",
      "footnote 1: q = 1/2 chosen for analysis; moderate q works, extremes slow down",
      10);

  struct Workload { std::string name; Graph graph; };
  std::vector<Workload> workloads;
  workloads.push_back({"K_256", ctx.cell_graph([&] { return gen::complete(256); })});
  workloads.push_back({"gnp1024 p=0.01", ctx.cell_graph([&] { return gen::gnp(1024, 0.01, ctx.seed); })});
  workloads.push_back({"tree4096", ctx.cell_graph([&] { return gen::random_tree(4096, ctx.seed + 1); })});

  for (auto& w : workloads) {
    print_banner(std::cout, "resample bias sweep on " + w.name);
    TextTable table({"q (P[black])", "mean", "p95", "timeouts"});
    for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
      int timeouts = 0;
      const Summary s = measure_variant(w.graph, q, false, ctx.trials,
                                        ctx.seed + 17, &timeouts, ctx);
      table.begin_row();
      table.add_cell(q, 2);
      table.add_cell(s.mean);
      table.add_cell(s.p95);
      table.add_cell(static_cast<std::int64_t>(timeouts));
    }
    // Eager-white rows (white -> black deterministically; black conflicts
    // still resample with the given q).
    for (double q : {0.5}) {
      int timeouts = 0;
      const Summary s = measure_variant(w.graph, q, true, ctx.trials,
                                        ctx.seed + 23, &timeouts, ctx);
      table.begin_row();
      table.add_cell("eager-white q=0.50");
      table.add_cell(s.mean);
      table.add_cell(s.p95);
      table.add_cell(static_cast<std::int64_t>(timeouts));
    }
    table.print(std::cout);
  }

  bench::finish_experiment(
      "the best q is workload-dependent: on cliques small q wins (fewer "
      "black-black collisions, Aloha-style), on sparse graphs and trees "
      "q = 1/2 is fastest and both extremes slow down markedly; eager-white "
      "is competitive throughout — supporting footnote 1's remark that the "
      "randomized transition is an analysis convenience, not a requirement");
  return 0;
}
