// Ablation A2 (footnote 1): the update probability 1/2 and the randomized
// white -> black transition are analysis simplifications. We sweep the
// resample bias q (P[active vertex draws black] = q) and compare against
// the "eager white" variant (white -> black with probability 1, as the
// footnote suggests the definition could have been).
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "stats/summary.hpp"

using namespace ssmis;

namespace {

// One measurement cell = the registry's 2state-variant protocol with the
// swept options; the shared harness owns trials, timeouts, and validity.
Summary measure_variant(const Graph& g, double q, bool eager, int trials,
                        std::uint64_t seed, int* timeouts,
                        const bench::ExpContext& ctx) {
  MeasureConfig config;
  ctx.apply_parallel(config);
  config.protocol = "2state-variant";
  config.params.set("black-bias", std::to_string(q));
  config.params.set("eager-white", eager ? "1" : "0");
  config.trials = trials;
  config.seed = seed;
  config.max_rounds = 500000;
  const Measurements m = measure_stabilization(g, config);
  *timeouts = m.timeouts;
  return m.summary;
}

}  // namespace

int main(int argc, char** argv) {
  auto ctx = bench::init_experiment(
      argc, argv, "A2 (ablation): update probability and eager-white variant",
      "footnote 1: q = 1/2 chosen for analysis; moderate q works, extremes slow down",
      10,
      bench::GraphFilePolicy::kLoad, "2state-variant", bench::ProtocolPolicy::kFixed);

  struct Workload { std::string name; Graph graph; };
  std::vector<Workload> workloads;
  workloads.push_back({"K_256", ctx.cell_graph([&] { return gen::complete(256); })});
  workloads.push_back({"gnp1024 p=0.01", ctx.cell_graph([&] { return gen::gnp(1024, 0.01, ctx.seed); })});
  workloads.push_back({"tree4096", ctx.cell_graph([&] { return gen::random_tree(4096, ctx.seed + 1); })});

  for (auto& w : workloads) {
    print_banner(std::cout, "resample bias sweep on " + w.name);
    TextTable table({"q (P[black])", "mean", "p95", "timeouts"});
    for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
      int timeouts = 0;
      const Summary s = measure_variant(w.graph, q, false, ctx.trials,
                                        ctx.seed + 17, &timeouts, ctx);
      table.begin_row();
      table.add_cell(q, 2);
      table.add_cell(s.mean);
      table.add_cell(s.p95);
      table.add_cell(static_cast<std::int64_t>(timeouts));
    }
    // Eager-white rows (white -> black deterministically; black conflicts
    // still resample with the given q).
    for (double q : {0.5}) {
      int timeouts = 0;
      const Summary s = measure_variant(w.graph, q, true, ctx.trials,
                                        ctx.seed + 23, &timeouts, ctx);
      table.begin_row();
      table.add_cell("eager-white q=0.50");
      table.add_cell(s.mean);
      table.add_cell(s.p95);
      table.add_cell(static_cast<std::int64_t>(timeouts));
    }
    table.print(std::cout);
  }

  bench::finish_experiment(
      "the best q is workload-dependent: on cliques small q wins (fewer "
      "black-black collisions, Aloha-style), on sparse graphs and trees "
      "q = 1/2 is fastest and both extremes slow down markedly; eager-white "
      "is competitive throughout — supporting footnote 1's remark that the "
      "randomized transition is an analysis convenience, not a requirement");
  return 0;
}
