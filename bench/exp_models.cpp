// Experiment E13: communication-model fidelity.
//
//  * The 2-state process run as a beeping automaton (1 bit/round, sender
//    collision detection) is bit-identical to the direct simulation.
//  * The 3-state process as a 2-channel stone-age automaton (no collision
//    detection) is bit-identical.
//  * The 18-state 3-color process as an 18-channel stone-age automaton is
//    bit-identical including the randomized switch levels.
//  * Communication accounting: bits per node per round for each algorithm
//    vs. Luby-style O(log n)-bit messages.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/init.hpp"
#include "core/three_color.hpp"
#include "core/three_state.hpp"
#include "core/two_state.hpp"
#include "harness/suites.hpp"
#include "models/beeping.hpp"
#include "models/mis_automata.hpp"
#include "models/stone_age.hpp"

using namespace ssmis;

int main(int argc, char** argv) {
  auto ctx = bench::init_experiment(
      argc, argv, "E13: weak-communication model fidelity",
      "the processes ARE beeping/stone-age algorithms: model executions are "
      "bit-identical to the direct process simulations",
      200,
      bench::GraphFilePolicy::kLoad, "2state", bench::ProtocolPolicy::kFixed);

  const auto suite = ctx.suite_or([&] { return small_suite(ctx.seed); });
  const int rounds = ctx.trials;  // rounds compared per graph

  print_banner(std::cout, "trace equivalence (rounds compared, mismatches)");
  TextTable table({"graph", "2state/beeping", "3state/stoneage", "3color/stoneage18"});
  // Each suite cell's three lockstep comparisons are self-contained, so the
  // cells batch across the pool; rows are rendered in suite order.
  struct RowCells {
    std::string beeping, stoneage, stoneage18;
  };
  const auto row_cells = ctx.trial_batch(static_cast<int>(suite.size()))
                             .map<RowCells>([&](int cell_idx) {
    const auto& cell = suite[static_cast<std::size_t>(cell_idx)];
    RowCells row;
    const Graph& g = cell.graph;
    const CoinOracle coins(ctx.seed + 11);

    {
      const auto init = make_init2(g, InitPattern::kUniformRandom, coins);
      TwoStateMIS direct(g, init, coins);
      const TwoStateBeepAutomaton automaton;
      std::vector<std::uint8_t> s(init.size());
      for (std::size_t i = 0; i < init.size(); ++i)
        s[i] = TwoStateBeepAutomaton::encode(init[i]);
      BeepingNetwork net(g, automaton, s, coins);
      int mismatches = 0;
      for (int r = 0; r < rounds; ++r) {
        direct.step();
        net.step();
        for (Vertex u = 0; u < g.num_vertices(); ++u)
          if (TwoStateBeepAutomaton::decode(net.state(u)) != direct.color(u)) ++mismatches;
      }
      row.beeping = std::to_string(rounds) + " rounds, " +
                    std::to_string(mismatches) + " mism";
    }
    {
      const auto init = make_init3(g, InitPattern::kUniformRandom, coins);
      ThreeStateMIS direct(g, init, coins);
      const ThreeStateStoneAgeAutomaton automaton;
      std::vector<std::uint8_t> s(init.size());
      for (std::size_t i = 0; i < init.size(); ++i)
        s[i] = ThreeStateStoneAgeAutomaton::encode(init[i]);
      StoneAgeNetwork net(g, automaton, s, coins);
      int mismatches = 0;
      for (int r = 0; r < rounds; ++r) {
        direct.step();
        net.step();
        for (Vertex u = 0; u < g.num_vertices(); ++u)
          if (ThreeStateStoneAgeAutomaton::decode(net.state(u)) != direct.color(u))
            ++mismatches;
      }
      row.stoneage = std::to_string(rounds) + " rounds, " +
                     std::to_string(mismatches) + " mism";
    }
    {
      const auto init = make_init_g(g, InitPattern::kUniformRandom, coins);
      auto direct = ThreeColorMIS::with_randomized_switch(g, init, coins);
      const auto* sw = dynamic_cast<const RandomizedLogSwitch*>(&direct.switch_process());
      const ThreeColorStoneAgeAutomaton automaton;
      std::vector<std::uint8_t> s(init.size());
      for (Vertex u = 0; u < g.num_vertices(); ++u)
        s[static_cast<std::size_t>(u)] = ThreeColorStoneAgeAutomaton::encode(
            init[static_cast<std::size_t>(u)], sw->clock().level(u));
      StoneAgeNetwork net(g, automaton, s, coins);
      int mismatches = 0;
      for (int r = 0; r < rounds; ++r) {
        direct.step();
        net.step();
        for (Vertex u = 0; u < g.num_vertices(); ++u) {
          if (ThreeColorStoneAgeAutomaton::decode_color(net.state(u)) != direct.color(u) ||
              ThreeColorStoneAgeAutomaton::decode_level(net.state(u)) !=
                  sw->clock().level(u))
            ++mismatches;
        }
      }
      row.stoneage18 = std::to_string(rounds) + " rounds, " +
                       std::to_string(mismatches) + " mism";
    }
    return row;
  });
  for (std::size_t i = 0; i < suite.size(); ++i) {
    table.begin_row();
    table.add_cell(suite[i].name);
    table.add_cell(row_cells[i].beeping);
    table.add_cell(row_cells[i].stoneage);
    table.add_cell(row_cells[i].stoneage18);
  }
  table.print(std::cout);

  print_banner(std::cout, "communication accounting (per node per round)");
  {
    TextTable table2({"algorithm", "states/node", "channels", "bits sent/round",
                      "random bits/round", "collision detection"});
    table2.add_row({"2-state (beeping)", "2", "1", "1", "1", "sender CD required"});
    table2.add_row({"3-state (stone age)", "3", "2", "1 of 2 channels", "1", "none"});
    table2.add_row({"3-color (stone age)", "18", "18", "1 of 18 channels", "8", "none"});
    table2.add_row({"Luby (message passing)", "O(log n)", "-", "O(log n)/edge",
                    "O(log n)", "none"});
    table2.print(std::cout);
  }

  bench::finish_experiment("zero mismatches everywhere: the model translations are exact");
  return 0;
}
