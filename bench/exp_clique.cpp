// Experiment E1 + E3 (Theorem 8, Remark 10): the 2-state MIS process on the
// complete graph K_n stabilizes in O(log n) rounds in expectation and
// O(log^2 n) w.h.p., with tail P[T >= k log n] = 2^{-Theta(k)}; the 3-state
// process is O(log n) both in expectation and w.h.p.
//
// Tables:
//   1. per-n summary for the 2-state process (mean/median/p95, ratios to
//      log n and log^2 n): mean/log n should stay ~constant, p95/log n may
//      drift (the w.h.p. bound is log^2), p95/log^2 n must not grow.
//   2. same sweep for the 3-state process: both mean/log n AND p95/log n
//      flat (Remark 10's stronger claim).
//   3. empirical tail of T/log2(n) on one clique size: successive k-rows
//      should decay geometrically (2^{-Theta(k)}).
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"
#include "stats/tail.hpp"

using namespace ssmis;

int main(int argc, char** argv) {
  auto ctx = bench::init_experiment(
      argc, argv, "E1/E3 (Theorem 8, Remark 10): cliques",
      "2-state on K_n: E[T] = O(log n), T = O(log^2 n) whp, tail 2^-Theta(k); "
      "3-state on K_n: O(log n) whp",
      30);

  const std::vector<Vertex> sizes = {64, 128, 256, 512, 1024};
  for (const std::string& protocol : ctx.protocols_or({"2state", "3state"})) {
    print_banner(std::cout, protocol + " process on K_n");
    TextTable table({"n", "mean", "median", "p95", "max", "mean/log2(n)",
                     "p95/log2(n)", "p95/log2^2(n)"});
    for (Vertex n : sizes) {
      const Graph g = ctx.cell_graph([&] { return gen::complete(static_cast<Vertex>(n * ctx.scale)); });
      MeasureConfig config;
      ctx.apply(config);
      config.protocol = protocol;
      config.trials = ctx.trials;
      config.seed = ctx.seed + static_cast<std::uint64_t>(n);
      config.max_rounds = 2000000;
      const Measurements m = measure_stabilization(g, config);
      const double ln = bench::log2n(g.num_vertices());
      table.begin_row();
      table.add_cell(static_cast<std::int64_t>(g.num_vertices()));
      table.add_cell(m.summary.mean);
      table.add_cell(m.summary.median);
      table.add_cell(m.summary.p95);
      table.add_cell(m.summary.max);
      table.add_cell(m.summary.mean / ln);
      table.add_cell(m.summary.p95 / ln);
      table.add_cell(m.summary.p95 / (ln * ln));
      if (m.timeouts > 0) table.add_cell("timeouts=" + std::to_string(m.timeouts));
    }
    table.print(std::cout);
  }

  // Tail table (Theorem 8's 2^{-Theta(k)} lower-order statement).
  print_banner(std::cout, "tail of T / log2(n) on K_256, " + ctx.protocol);
  {
    const Graph g = ctx.cell_graph([&] { return gen::complete(256); });
    MeasureConfig config;
    ctx.apply(config);
    config.trials = std::max(200, ctx.trials * 4);
    config.seed = ctx.seed + 999;
    config.max_rounds = 2000000;
    const Measurements m = measure_stabilization(g, config);
    const double ln = bench::log2n(256);
    std::vector<double> normalized;
    for (double r : m.stabilization_rounds) normalized.push_back(r / ln);
    std::vector<double> thresholds;
    for (int k = 1; k <= 6; ++k) thresholds.push_back(static_cast<double>(k));
    const auto tail = empirical_tail(normalized, thresholds);
    TextTable table({"k", "P[T >= k*log2(n)]", "count"});
    for (const auto& point : tail) {
      table.begin_row();
      table.add_cell(point.threshold, 0);
      table.add_cell(point.probability, 4);
      table.add_cell(static_cast<std::int64_t>(point.exceed_count));
    }
    table.print(std::cout);
    std::cout << "mean successive tail decay: "
              << format_double(mean_tail_decay(tail), 3)
              << " (geometric decay => bounded away from 1)\n";
  }

  bench::finish_experiment(
      "expect mean/log2(n) roughly flat for both processes; p95/log2^2(n) "
      "bounded for 2-state; tail decays geometrically");
  return 0;
}
