// Experiment E14: self-stabilization under transient faults.
//
// Self-stabilization (Dijkstra 1974) gives fault recovery for free: after
// an adversary rewrites any subset of vertex states (and clock levels for
// the 3-color process), the configuration is just another "initial state"
// and the process re-converges. We measure re-stabilization time as a
// function of the corrupted fraction.
//
// The protocol columns come from the registry: every run constructs its
// process by name, injects faults through the type-erased
// Process::inject_fault (which covers auxiliary state like switch levels),
// and re-verifies the protocol's own validity predicate. --protocol NAME
// restricts the table to one protocol — including the non-enum-era ones
// (daemon, beeping, stoneage, matching, priority).
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/faults.hpp"
#include "core/process.hpp"
#include "graph/generators.hpp"
#include "stats/summary.hpp"

using namespace ssmis;

namespace {

Summary recovery_summary(const Graph& g, const std::string& protocol,
                         const bench::ExpContext& ctx, int trials,
                         std::uint64_t seed, double fraction) {
  const auto outcomes =
      ctx.trial_batch(trials).map<double>([&](int trial) -> double {
        auto p = ProtocolRegistry::instance().make(
            protocol, g, with_init(ctx.proto_params, InitPattern::kUniformRandom),
            seed + static_cast<std::uint64_t>(trial));
        p->set_shards(ctx.shards());
        RunResult r = p->run(2000000, TraceMode::kNone);
        if (!r.stabilized) return -1.0;
        inject_faults(*p, fraction, trial);
        r = p->run(2000000, TraceMode::kNone);
        if (!r.stabilized) return -1.0;
        p->verify_output();  // throws if the recovered output is invalid
        return static_cast<double>(r.rounds);
      });
  std::vector<double> rounds;
  for (double v : outcomes)
    if (v >= 0.0) rounds.push_back(v);
  return summarize(rounds);
}

}  // namespace

int main(int argc, char** argv) {
  auto ctx = bench::init_experiment(
      argc, argv, "E14: transient-fault recovery",
      "self-stabilization => re-convergence from any corruption; recovery "
      "time grows mildly with the corrupted fraction",
      10);

  const Graph sparse = ctx.cell_graph([&] { return gen::gnp(512, 0.02, ctx.seed); });
  const Graph tree = ctx.cell_graph([&] { return gen::random_tree(1024, ctx.seed + 1); });
  const Graph dense = ctx.cell_graph([&] { return gen::gnp(256, 0.3, ctx.seed + 2); });

  struct Workload {
    std::string name;
    const Graph* graph;
  };
  const std::vector<Workload> workloads = {
      {"gnp512 p=0.02", &sparse}, {"tree1024", &tree}, {"gnp256 p=0.3", &dense}};

  const std::vector<std::string> protocols =
      ctx.protocols_or({"2state", "3state", "3color"});

  for (const auto& w : workloads) {
    print_banner(std::cout, "recovery rounds on " + w.name);
    std::vector<std::string> headers = {"corrupt frac"};
    for (const auto& protocol : protocols) {
      headers.push_back(protocol + " mean");
      headers.push_back(protocol + " p95");
    }
    TextTable table(headers);
    // One fixed seed offset per protocol, derived from its position in the
    // global registry order: every fraction row re-corrupts the SAME
    // stabilized baselines (the sweep isolates the fraction effect), and a
    // --protocol run reproduces its column from the full table exactly.
    const auto registry_names = ProtocolRegistry::instance().names();
    const auto protocol_seed = [&](const std::string& protocol) {
      std::uint64_t index = 0;
      for (std::size_t i = 0; i < registry_names.size(); ++i)
        if (registry_names[i] == protocol) index = static_cast<std::uint64_t>(i);
      return ctx.seed + 31 + 6 * index;
    };
    for (double fraction : {0.05, 0.2, 0.5, 1.0}) {
      table.begin_row();
      table.add_cell(fraction, 2);
      for (const auto& protocol : protocols) {
        const Summary s = recovery_summary(*w.graph, protocol, ctx, ctx.trials,
                                           protocol_seed(protocol), fraction);
        table.add_cell(s.mean);
        table.add_cell(s.p95);
      }
    }
    table.print(std::cout);
  }

  bench::finish_experiment(
      "every injected run re-stabilizes to a valid output; recovery time is "
      "in the same order as fresh stabilization even at 100% corruption");
  return 0;
}
