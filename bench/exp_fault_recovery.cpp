// Experiment E14: self-stabilization under transient faults.
//
// Self-stabilization (Dijkstra 1974) gives fault recovery for free: after
// an adversary rewrites any subset of vertex states (and clock levels for
// the 3-color process), the configuration is just another "initial state"
// and the process re-converges. We measure re-stabilization time as a
// function of the corrupted fraction.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/faults.hpp"
#include "core/init.hpp"
#include "core/runner.hpp"
#include "core/three_color.hpp"
#include "core/three_state.hpp"
#include "core/two_state.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "stats/summary.hpp"

using namespace ssmis;

namespace {

template <typename Process>
Summary recovery_summary(const Graph& g, int trials, std::uint64_t seed,
                         double fraction,
                         Process (*make)(const Graph&, std::uint64_t),
                         const bench::ExpContext& ctx) {
  const auto outcomes =
      ctx.trial_batch(trials).map<double>([&](int trial) -> double {
        Process p = make(g, seed + static_cast<std::uint64_t>(trial));
        p.set_shards(ctx.shards());
        RunResult r = run_until_stabilized(p, 2000000);
        if (!r.stabilized) return -1.0;
        inject_faults(p, fraction, trial);
        r = run_until_stabilized(p, 2000000);
        if (r.stabilized && is_mis(g, p.black_set()))
          return static_cast<double>(r.rounds);
        return -1.0;
      });
  std::vector<double> rounds;
  for (double v : outcomes)
    if (v >= 0.0) rounds.push_back(v);
  return summarize(rounds);
}

TwoStateMIS make2(const Graph& g, std::uint64_t seed) {
  const CoinOracle coins(seed);
  return TwoStateMIS(g, make_init2(g, InitPattern::kUniformRandom, coins), coins);
}

ThreeStateMIS make3(const Graph& g, std::uint64_t seed) {
  const CoinOracle coins(seed);
  return ThreeStateMIS(g, make_init3(g, InitPattern::kUniformRandom, coins), coins);
}

ThreeColorMIS make_g(const Graph& g, std::uint64_t seed) {
  const CoinOracle coins(seed);
  return ThreeColorMIS::with_randomized_switch(
      g, make_init_g(g, InitPattern::kUniformRandom, coins), coins);
}

}  // namespace

int main(int argc, char** argv) {
  auto ctx = bench::init_experiment(
      argc, argv, "E14: transient-fault recovery",
      "self-stabilization => re-convergence from any corruption; recovery "
      "time grows mildly with the corrupted fraction",
      10);

  const Graph sparse = ctx.cell_graph([&] { return gen::gnp(512, 0.02, ctx.seed); });
  const Graph tree = ctx.cell_graph([&] { return gen::random_tree(1024, ctx.seed + 1); });
  const Graph dense = ctx.cell_graph([&] { return gen::gnp(256, 0.3, ctx.seed + 2); });

  struct Workload {
    std::string name;
    const Graph* graph;
  };
  const std::vector<Workload> workloads = {
      {"gnp512 p=0.02", &sparse}, {"tree1024", &tree}, {"gnp256 p=0.3", &dense}};

  for (const auto& w : workloads) {
    print_banner(std::cout, "recovery rounds on " + w.name);
    TextTable table({"corrupt frac", "2-state mean", "2-state p95", "3-state mean",
                     "3-color mean"});
    for (double fraction : {0.05, 0.2, 0.5, 1.0}) {
      const Summary s2 = recovery_summary<TwoStateMIS>(
          *w.graph, ctx.trials, ctx.seed + 31, fraction, make2, ctx);
      const Summary s3 = recovery_summary<ThreeStateMIS>(
          *w.graph, ctx.trials, ctx.seed + 37, fraction, make3, ctx);
      const Summary sg = recovery_summary<ThreeColorMIS>(
          *w.graph, ctx.trials, ctx.seed + 41, fraction, make_g, ctx);
      table.begin_row();
      table.add_cell(fraction, 2);
      table.add_cell(s2.mean);
      table.add_cell(s2.p95);
      table.add_cell(s3.mean);
      table.add_cell(sg.mean);
    }
    table.print(std::cout);
  }

  bench::finish_experiment(
      "every injected run re-stabilizes to a valid MIS; recovery time is in "
      "the same order as fresh stabilization even at 100% corruption");
  return 0;
}
