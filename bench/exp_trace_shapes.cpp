// Experiment F1 ("figures"): per-round progress trajectories.
//
// The paper has no plots, but its analysis has a characteristic shape that
// a reader can check by eye: the potential |V_t| (vertices not yet stable)
// decays geometrically after a short burn-in, driven by the active set
// |A_t| collapsing first (Lemma 21 regime), then the residual sparse
// cleanup (Lemma 22/23 regimes). This binary prints the trajectories as
// sparklines plus the measured half-life of |V_t|.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"
#include "stats/histogram.hpp"

using namespace ssmis;

namespace {

std::vector<double> column(const RunResult& r, Vertex RoundStats::*field) {
  std::vector<double> out;
  out.reserve(r.trace.size());
  for (const RoundStats& s : r.trace)
    out.push_back(static_cast<double>(s.*field));
  return out;
}

// Rounds for |V_t| to first drop below half its initial value.
std::int64_t half_life(const std::vector<double>& v) {
  if (v.empty() || v.front() <= 0) return 0;
  for (std::size_t i = 0; i < v.size(); ++i)
    if (v[i] <= v.front() / 2) return static_cast<std::int64_t>(i);
  return static_cast<std::int64_t>(v.size());
}

}  // namespace

int main(int argc, char** argv) {
  auto ctx = bench::init_experiment(
      argc, argv, "F1 (progress trajectories)",
      "|V_t| decays geometrically; |A_t| collapses first (Lemma 21 phase), "
      "then residual cleanup (Lemmas 22-23)",
      1,
      bench::GraphFilePolicy::kLoad, "2state", bench::ProtocolPolicy::kFixed);

  struct Cell {
    std::string name;
    Graph graph;
    std::string protocol;
  };
  std::vector<Cell> cells;
  cells.push_back({"2-state on K_1024", ctx.cell_graph([&] { return gen::complete(1024); }), "2state"});
  cells.push_back({"2-state on gnp2048 p=0.005", ctx.cell_graph([&] { return gen::gnp(2048, 0.005, ctx.seed); }),
                   "2state"});
  cells.push_back({"2-state on tree4096", ctx.cell_graph([&] { return gen::random_tree(4096, ctx.seed + 1); }),
                   "2state"});
  cells.push_back({"3-state on gnp2048 p=0.005", ctx.cell_graph([&] { return gen::gnp(2048, 0.005, ctx.seed); }),
                   "3state"});
  cells.push_back({"3-color on gnp512 p=0.1", ctx.cell_graph([&] { return gen::gnp(512, 0.1, ctx.seed + 2); }),
                   "3color"});

  for (auto& cell : cells) {
    MeasureConfig config;
    config.protocol = cell.protocol;
    config.seed = ctx.seed + 5;
    config.max_rounds = 2000000;
    config.threads = ctx.parallel.threads;  // traced_run shards the engine
    const RunResult r = traced_run(cell.graph, config);
    print_banner(std::cout, cell.name + " (" + std::to_string(r.rounds) + " rounds)");
    const auto unstable = column(r, &RoundStats::unstable);
    const auto active = column(r, &RoundStats::active);
    const auto black = column(r, &RoundStats::black);
    std::cout << "|V_t| " << sparkline(downsample_max(unstable, 64)) << "\n";
    std::cout << "|A_t| " << sparkline(downsample_max(active, 64)) << "\n";
    std::cout << "|B_t| " << sparkline(downsample_max(black, 64)) << "\n";
    std::cout << "|V_t| start " << format_double(unstable.front(), 0) << ", half-life "
              << half_life(unstable) << " rounds, stabilized after " << r.rounds
              << "\n";
  }

  bench::finish_experiment(
      "every trajectory shows the analysis shape: a short |A_t| spike, then "
      "geometric |V_t| decay to zero (half-life a handful of rounds)");
  return 0;
}
