// Experiment E5 (Theorem 12): on any graph of maximum degree Delta, the
// 2-state process stabilizes in O(Delta log n) rounds w.h.p. Diagnostic:
// p95 / (Delta * log2 n) bounded across Delta and n. (In practice the bound
// is loose — measured times are far below it — so we also report p95/log2(n)
// to show the actual dependence is milder.)
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"

using namespace ssmis;

int main(int argc, char** argv) {
  auto ctx = bench::init_experiment(
      argc, argv, "E5 (Theorem 12): max-degree bound",
      "2-state is O(Delta log n) whp on max-degree-Delta graphs", 15);

  print_banner(std::cout, ctx.protocol + " on random d-regular graphs, n = 2048");
  {
    TextTable table({"d", "mean", "p95", "p95/log2(n)", "p95/(d*log2(n))"});
    for (int d : {4, 8, 16, 32, 64}) {
      const Graph g = ctx.cell_graph([&] { return gen::random_regular(2048, d, ctx.seed + static_cast<std::uint64_t>(d)); });
      MeasureConfig config;
      config.trials = ctx.trials;
      config.seed = ctx.seed + 100 + static_cast<std::uint64_t>(d);
      config.max_rounds = 1000000;
      ctx.apply(config);
      const Measurements m = measure_stabilization(g, config);
      const double ln = bench::log2n(2048);
      table.begin_row();
      table.add_cell(static_cast<std::int64_t>(d));
      table.add_cell(m.summary.mean);
      table.add_cell(m.summary.p95);
      table.add_cell(m.summary.p95 / ln);
      table.add_cell(m.summary.p95 / (d * ln));
    }
    table.print(std::cout);
  }

  print_banner(std::cout, ctx.protocol + " on structured constant-degree graphs");
  {
    struct Cell { std::string name; Graph graph; int delta; };
    std::vector<Cell> cells;
    cells.push_back({"torus 32x32", ctx.cell_graph([&] { return gen::torus(32, 32); }), 4});
    cells.push_back({"torus 64x64", ctx.cell_graph([&] { return gen::torus(64, 64); }), 4});
    cells.push_back({"grid 64x64", ctx.cell_graph([&] { return gen::grid(64, 64); }), 4});
    cells.push_back({"hypercube 10", ctx.cell_graph([&] { return gen::hypercube(10); }), 10});
    cells.push_back({"hypercube 12", ctx.cell_graph([&] { return gen::hypercube(12); }), 12});
    TextTable table({"graph", "n", "Delta", "mean", "p95", "p95/(Delta*log2 n)"});
    for (const auto& cell : cells) {
      MeasureConfig config;
      config.trials = ctx.trials;
      config.seed = ctx.seed + 7;
      config.max_rounds = 1000000;
      ctx.apply(config);
      const Measurements m = measure_stabilization(cell.graph, config);
      const double ln = bench::log2n(cell.graph.num_vertices());
      table.begin_row();
      table.add_cell(cell.name);
      table.add_cell(static_cast<std::int64_t>(cell.graph.num_vertices()));
      table.add_cell(static_cast<std::int64_t>(cell.delta));
      table.add_cell(m.summary.mean);
      table.add_cell(m.summary.p95);
      table.add_cell(m.summary.p95 / (cell.delta * ln));
    }
    table.print(std::cout);
  }

  bench::finish_experiment(
      "p95/(Delta*log2 n) well below 1 and non-increasing in Delta: the "
      "O(Delta log n) bound holds with room to spare");
  return 0;
}
